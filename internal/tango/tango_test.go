package tango

import (
	"reflect"
	"strings"
	"testing"

	"dynsched/internal/asm"
	"dynsched/internal/isa"
	"dynsched/internal/mem"
	"dynsched/internal/vm"
)

func cfgN(n, traceCPU int) Config {
	c := DefaultConfig()
	c.NumCPUs = n
	c.TraceCPU = traceCPU
	return c
}

func same(n int, p *asm.Program) []*asm.Program {
	ps := make([]*asm.Program, n)
	for i := range ps {
		ps[i] = p
	}
	return ps
}

// lockCounter builds: for i in 0..iters { lock; c = mem[addr]; c++; store; unlock }.
func lockCounter(lockAddr, ctrAddr uint64, iters int64) *asm.Program {
	b := asm.NewBuilder("lockctr")
	lk := b.Alloc()
	ctr := b.Alloc()
	b.Li(lk, int64(lockAddr))
	b.Li(ctr, int64(ctrAddr))
	b.ForI(0, iters, 1, func(i asm.Reg) {
		b.Lock(lk, 0)
		v := b.Alloc()
		b.Ld(v, ctr, 0)
		b.Addi(v, v, 1)
		b.St(ctr, 0, v)
		b.Free(v)
		b.Unlock(lk, 0)
	})
	b.Halt()
	return b.MustBuild()
}

func TestLockMutualExclusion(t *testing.T) {
	const iters = 50
	const n = 4
	prog := lockCounter(0x1000, 0x2000, iters)
	res, err := Run(same(n, prog), nil, cfgN(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Verify the final counter through a fresh read of shared memory via a
	// probe program is overkill; instead re-run with memInit capturing the
	// memory pointer.
	var m *vm.PagedMem
	res, err = Run(same(n, prog), func(pm *vm.PagedMem) { m = pm }, cfgN(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Load(0x2000); got != iters*n {
		t.Errorf("counter = %d, want %d (lost updates: lock broken)", got, iters*n)
	}
	if res.Trace == nil || res.Trace.Len() == 0 {
		t.Fatal("no trace recorded")
	}
	if err := res.Trace.Validate(); err != nil {
		t.Errorf("trace invalid: %v", err)
	}
	sync := res.Trace.Sync()
	if sync.Locks != iters || sync.Unlocks != iters {
		t.Errorf("sync stats = %+v, want %d locks/unlocks", sync, iters)
	}
}

func TestLockContentionRecordsWait(t *testing.T) {
	const n = 4
	prog := lockCounter(0x1000, 0x2000, 20)
	res, err := Run(same(n, prog), nil, cfgN(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	var waited uint64
	for _, e := range res.Trace.Events {
		if e.Instr.Op == isa.OpLock {
			waited += uint64(e.Wait)
		}
	}
	if waited == 0 {
		t.Error("4 CPUs hammering one lock recorded zero contention wait")
	}
	if res.CPUStats[1].SyncWait == 0 {
		t.Error("CPUStats.SyncWait = 0 under contention")
	}
}

func TestBarrierOrdering(t *testing.T) {
	// Each CPU stores its id+1 to slot[cpu] (phase 1), barrier, then sums
	// all slots and stores the result to out[cpu].
	const n = 8
	slots := uint64(0x4000)
	out := uint64(0x8000)
	b := asm.NewBuilder("barrier")
	base := b.Alloc()
	addr := b.Alloc()
	v := b.Alloc()
	b.Li(base, int64(slots))
	b.Shli(addr, asm.RegCPU, 3)
	b.Add(addr, addr, base)
	b.Addi(v, asm.RegCPU, 1)
	b.St(addr, 0, v)
	b.Barrier(1)
	sum := b.Alloc()
	b.Li(sum, 0)
	b.For(isa.Zero, asm.RegNCPU, 1, func(i asm.Reg) {
		b.Shli(addr, i, 3)
		b.Add(addr, addr, base)
		b.Ld(v, addr, 0)
		b.Add(sum, sum, v)
	})
	b.Li(base, int64(out))
	b.Shli(addr, asm.RegCPU, 3)
	b.Add(addr, addr, base)
	b.St(addr, 0, sum)
	b.Halt()
	prog := b.MustBuild()

	var m *vm.PagedMem
	res, err := Run(same(n, prog), func(pm *vm.PagedMem) { m = pm }, cfgN(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(n * (n + 1) / 2)
	for cpu := 0; cpu < n; cpu++ {
		if got := m.Load(out + uint64(cpu)*8); got != want {
			t.Errorf("cpu %d sum = %d, want %d (barrier did not order phases)", cpu, got, want)
		}
	}
	if got := res.Trace.Sync().Barriers; got != 1 {
		t.Errorf("barriers in trace = %d, want 1", got)
	}
	if err := res.Trace.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBarrierReuse(t *testing.T) {
	// Same barrier id used across 5 phases must not deadlock or misorder.
	const n = 4
	b := asm.NewBuilder("reuse")
	b.ForI(0, 5, 1, func(i asm.Reg) {
		b.Barrier(7)
	})
	b.Halt()
	res, err := Run(same(n, b.MustBuild()), nil, cfgN(n, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Trace.Sync().Barriers; got != 5 {
		t.Errorf("barrier episodes = %d, want 5", got)
	}
}

func TestEventProducerConsumer(t *testing.T) {
	data := uint64(0x6000)
	// CPU 0 produces after a delay; CPU 1 waits then reads.
	pb := asm.NewBuilder("producer")
	d := pb.Alloc()
	v := pb.Alloc()
	pb.Li(d, int64(data))
	pb.Li(v, 0)
	pb.ForI(0, 200, 1, func(i asm.Reg) { pb.Add(v, v, i) }) // delay work
	pb.Li(v, 99)
	pb.St(d, 0, v)
	pb.SetEv(3)
	pb.Halt()

	cb := asm.NewBuilder("consumer")
	d2 := cb.Alloc()
	v2 := cb.Alloc()
	out := cb.Alloc()
	cb.Li(d2, int64(data))
	cb.WaitEv(3)
	cb.Ld(v2, d2, 0)
	cb.Li(out, 0x7000)
	cb.St(out, 0, v2)
	cb.Halt()

	var m *vm.PagedMem
	res, err := Run([]*asm.Program{pb.MustBuild(), cb.MustBuild()},
		func(pm *vm.PagedMem) { m = pm }, cfgN(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Load(0x7000); got != 99 {
		t.Errorf("consumer read %d, want 99 (event did not order)", got)
	}
	// The consumer blocked early, so its wait-event must record W > 0.
	var found bool
	for _, e := range res.Trace.Events {
		if e.Instr.Op == isa.OpWaitEv {
			found = true
			if e.Wait == 0 {
				t.Error("WaitEv recorded zero wait despite producer delay")
			}
			if e.Latency == 0 {
				t.Error("WaitEv recorded zero transfer latency")
			}
		}
	}
	if !found {
		t.Fatal("no WaitEv in consumer trace")
	}
}

func TestWaitOnAlreadySetEvent(t *testing.T) {
	pb := asm.NewBuilder("setter")
	pb.SetEv(5)
	pb.Halt()
	cb := asm.NewBuilder("latecomer")
	// Long delay so the event is set well before the wait.
	r := cb.Alloc()
	cb.Li(r, 0)
	cb.ForI(0, 500, 1, func(i asm.Reg) { cb.Add(r, r, i) })
	cb.WaitEv(5)
	cb.Halt()
	res, err := Run([]*asm.Program{pb.MustBuild(), cb.MustBuild()}, nil, cfgN(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Trace.Events {
		if e.Instr.Op == isa.OpWaitEv && e.Wait != 0 {
			t.Errorf("late WaitEv recorded wait %d, want 0", e.Wait)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	// CPU 0 takes the lock and halts without releasing; CPU 1 blocks forever.
	hb := asm.NewBuilder("hog")
	lk := hb.Alloc()
	hb.Li(lk, 0x1000)
	hb.Lock(lk, 0)
	hb.Halt()
	wb := asm.NewBuilder("waiter")
	lk2 := wb.Alloc()
	wb.Li(lk2, 0x1000)
	r := wb.Alloc()
	wb.Li(r, 0)
	wb.ForI(0, 50, 1, func(i asm.Reg) { wb.Add(r, r, i) })
	wb.Lock(lk2, 0)
	wb.Halt()
	_, err := Run([]*asm.Program{hb.MustBuild(), wb.MustBuild()}, nil, cfgN(2, -1))
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestUnlockOfFreeLockFails(t *testing.T) {
	b := asm.NewBuilder("bad")
	lk := b.Alloc()
	b.Li(lk, 0x1000)
	b.Unlock(lk, 0)
	b.Halt()
	if _, err := Run(same(1, b.MustBuild()), nil, cfgN(1, -1)); err == nil {
		t.Fatal("unlock of free lock did not error")
	}
}

func TestMissAnnotations(t *testing.T) {
	b := asm.NewBuilder("miss")
	base := b.Alloc()
	v := b.Alloc()
	b.Li(base, 0x100)
	b.Ld(v, base, 0)  // cold miss
	b.Ld(v, base, 8)  // same line: hit
	b.Ld(v, base, 16) // next line: miss
	b.Halt()
	res, err := Run(same(1, b.MustBuild()), nil, cfgN(1, 0))
	if err != nil {
		t.Fatal(err)
	}
	var loads []bool
	var lats []uint32
	for _, e := range res.Trace.Events {
		if e.Instr.Op == isa.OpLd {
			loads = append(loads, e.Miss)
			lats = append(lats, e.Latency)
		}
	}
	wantMiss := []bool{true, false, true}
	wantLat := []uint32{50, 1, 50}
	if !reflect.DeepEqual(loads, wantMiss) || !reflect.DeepEqual(lats, wantLat) {
		t.Errorf("miss pattern = %v/%v, want %v/%v", loads, lats, wantMiss, wantLat)
	}
	d := res.Trace.Data()
	if d.Reads != 3 || d.ReadMisses != 2 {
		t.Errorf("Data() = %+v, want 3 reads, 2 misses", d)
	}
}

func TestDeterminism(t *testing.T) {
	const n = 4
	prog := lockCounter(0x1000, 0x2000, 10)
	r1, err := Run(same(n, prog), nil, cfgN(n, 2))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(same(n, prog), nil, cfgN(n, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Trace.Events, r2.Trace.Events) {
		t.Error("two identical runs produced different traces")
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("cycles differ: %d vs %d", r1.Cycles, r2.Cycles)
	}
}

func TestBusyCyclesEqualInstructions(t *testing.T) {
	prog := lockCounter(0x1000, 0x2000, 5)
	res, err := Run(same(2, prog), nil, cfgN(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Trace.Data().BusyCycles, res.CPUStats[0].Instructions; got != want {
		t.Errorf("trace busy cycles %d != executed instructions %d", got, want)
	}
}

func TestConfigValidation(t *testing.T) {
	prog := lockCounter(0, 8, 1)
	if _, err := Run(same(2, prog), nil, cfgN(3, 0)); err == nil {
		t.Error("mismatched program count accepted")
	}
	if _, err := Run(same(2, prog), nil, cfgN(2, 5)); err == nil {
		t.Error("out-of-range TraceCPU accepted")
	}
	if _, err := Run(nil, nil, Config{NumCPUs: 0, Mem: mem.DefaultConfig()}); err == nil {
		t.Error("zero CPUs accepted")
	}
}

func TestRunawayGuard(t *testing.T) {
	b := asm.NewBuilder("spin")
	b.Label("top")
	b.J("top")
	cfg := cfgN(1, -1)
	cfg.MaxInstrs = 1000
	if _, err := Run(same(1, b.MustBuild()), nil, cfg); err == nil {
		t.Fatal("runaway program not caught")
	}
}

func TestRecordAllTraces(t *testing.T) {
	const n = 4
	prog := lockCounter(0x1000, 0x2000, 10)
	cfg := cfgN(n, 1)
	cfg.RecordAll = true
	res, err := Run(same(n, prog), nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Traces) != n {
		t.Fatalf("traces = %d, want %d", len(res.Traces), n)
	}
	for i, tr := range res.Traces {
		if tr == nil || tr.Len() == 0 {
			t.Fatalf("trace %d missing", i)
		}
		if tr.CPU != i {
			t.Errorf("trace %d labeled cpu %d", i, tr.CPU)
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("trace %d: %v", i, err)
		}
		if uint64(tr.Len()) != res.CPUStats[i].Instructions {
			t.Errorf("trace %d length %d != instructions %d", i, tr.Len(), res.CPUStats[i].Instructions)
		}
	}
	// The primary trace aliases the RecordAll entry for the traced CPU.
	if res.Trace != res.Traces[1] {
		t.Error("Result.Trace does not alias Traces[TraceCPU]")
	}
}

func TestMemoryBandwidthContention(t *testing.T) {
	// Many CPUs missing simultaneously: finite bandwidth must queue them,
	// stretching recorded miss latencies beyond the base penalty.
	b := asm.NewBuilder("bw")
	base := b.Alloc()
	v := b.Alloc()
	b.Li(base, 0x100000)
	// Distinct lines per CPU so every access is a cold miss.
	b.Shli(v, asm.RegCPU, 12)
	b.Add(base, base, v)
	b.ForI(0, 20, 1, func(i asm.Reg) {
		b.Shli(v, i, 4)
		t2 := b.Alloc()
		b.Add(t2, base, v)
		b.Ld(v, t2, 0)
		b.Free(t2)
	})
	b.Halt()
	prog := b.MustBuild()

	unbounded := cfgN(8, 1)
	res1, err := Run(same(8, prog), nil, unbounded)
	if err != nil {
		t.Fatal(err)
	}
	limited := cfgN(8, 1)
	limited.MemIssueInterval = 10
	res2, err := Run(same(8, prog), nil, limited)
	if err != nil {
		t.Fatal(err)
	}
	if err := res2.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	var max1, max2 uint32
	for _, e := range res1.Trace.Events {
		if e.Miss && e.Latency > max1 {
			max1 = e.Latency
		}
	}
	for _, e := range res2.Trace.Events {
		if e.Miss && e.Latency > max2 {
			max2 = e.Latency
		}
	}
	if max1 != 50 {
		t.Errorf("unbounded bandwidth max miss latency = %d, want 50", max1)
	}
	if max2 <= 50 {
		t.Errorf("limited bandwidth should queue misses: max latency = %d", max2)
	}
	if res2.Cycles <= res1.Cycles {
		t.Errorf("limited bandwidth should lengthen execution: %d vs %d", res2.Cycles, res1.Cycles)
	}
}
