// Package tango is the execution-driven multiprocessor simulator — the
// repository's equivalent of the Tango Lite environment of §3.2. It runs one
// virtual-ISA thread per processor over a shared functional memory, models
// per-processor coherent caches with a fixed miss penalty, services the
// synchronization primitives (locks, barriers, events), and emits the
// annotated dynamic instruction trace for a chosen processor.
//
// The simulated processors are, as in the paper, "simple in-order issue
// processors with blocking reads"; writes are placed in a write buffer and
// the multiprocessor simulation runs under release consistency, so write
// latency does not stall the processors but releases drain the write buffer.
//
// The simulator is deterministic: processors are stepped in global time
// order with processor id breaking ties, so a given application and
// configuration always produces the identical trace.
package tango

import (
	"context"
	"fmt"
	"math"
	"strings"

	"dynsched/internal/asm"
	"dynsched/internal/isa"
	"dynsched/internal/mem"
	"dynsched/internal/obs"
	"dynsched/internal/trace"
	"dynsched/internal/vm"
)

// Config parameterizes a simulation run.
type Config struct {
	NumCPUs  int        // processors (paper: 16)
	Mem      mem.Config // cache geometry and miss penalty
	TraceCPU int        // processor whose trace to record; -1 records none
	// RecordAll records every processor's trace (Result.Traces); used by
	// the multiple-hardware-contexts experiments, which interleave several
	// processors' instruction streams on one pipeline.
	RecordAll bool
	// MemIssueInterval models finite global memory bandwidth: the minimum
	// number of cycles between the starts of successive miss services
	// across the whole machine. 0 (the paper's assumption, §3.2) means
	// unbounded bandwidth — "queuing and contention effects in the
	// interconnection network are not modeled". A non-zero value adds
	// queueing delay to each miss, lengthening its recorded latency.
	MemIssueInterval uint32
	// MaxInstrs bounds per-processor dynamic instructions (0 = 2^40); it
	// guards against runaway application bugs, not normal execution.
	MaxInstrs uint64
	// MaxCycles bounds simulated machine time (0 = unbounded). A program
	// that spins past it is killed with a *MachineError carrying a
	// machine-state dump, the multiprocessor counterpart of the replay
	// watchdog in package cpu.
	MaxCycles uint64
	// Ctx cancels a long simulation cooperatively: the scheduler loop polls
	// it every few thousand instructions. nil means never cancel.
	Ctx context.Context

	// Metrics, when non-nil, receives the machine-level counters after the
	// run: per-CPU cache miss/upgrade/invalidation counts, synchronization
	// wait and transfer cycles, write-buffer drain cycles, and whole-machine
	// totals, all under MetricsPrefix.
	Metrics *obs.Registry
	// MetricsPrefix names this run's metrics (default "tango."); harnesses
	// that run several applications into one registry disambiguate with
	// e.g. "tango.ocean.".
	MetricsPrefix string
	// Progress, when non-nil, receives periodic executed-instruction and
	// simulated-cycle counts for the -progress ticker, as one labelled lane
	// (obtain one via Progress.Lane) so concurrent simulations do not
	// clobber each other's rows.
	Progress *obs.Lane
	// Timeline, when non-nil, receives cumulative machine-wide snapshots at
	// aligned 2^k-cycle boundaries as simulated time passes them: executed
	// instructions (busy cycles) plus summed per-processor sync-wait,
	// read-stall, and write-drain cycles. Unlike the uniprocessor replay
	// breakdowns, these components do not sum to the boundary cycle — the
	// processors stall in parallel — so timeline consumers treat tango
	// series as machine activity curves, not a cycle conservation.
	Timeline *obs.Timeline
}

// DefaultConfig returns the paper's machine: 16 processors, 64 KB caches,
// 50-cycle miss penalty, tracing processor 1 (a representative worker).
func DefaultConfig() Config {
	return Config{NumCPUs: 16, Mem: mem.DefaultConfig(), TraceCPU: 1}
}

// CPUStats summarizes one processor's execution.
type CPUStats struct {
	Instructions uint64 // dynamic instructions (busy cycles)
	FinishCycle  uint64 // absolute time the processor halted
	SyncWait     uint64 // total W cycles spent blocked on synchronization
	SyncTransfer uint64 // total T cycles transferring sync variables
	ReadStall    uint64 // cycles stalled on read misses (beyond the hit cycle)
	WriteDrain   uint64 // cycles releases waited for the write buffer to drain
}

// Result is the outcome of a simulation.
type Result struct {
	Trace      *trace.Trace   // nil when Config.TraceCPU < 0
	Traces     []*trace.Trace // per-processor traces when Config.RecordAll
	CacheStats []mem.Stats
	CPUStats   []CPUStats
	Cycles     uint64 // finish time of the last processor
}

const unblocked = math.MaxUint64

// procEntry is one scheduled wakeup in the scheduler's ready heap.
type procEntry struct {
	at uint64 // the processor's readyAt when the entry was pushed
	id int
}

// procHeap is a binary min-heap on (at, id) — the event queue of the
// scheduler. Ordering by time with processor id breaking ties reproduces
// exactly the interleaving of the original linear scan ("smallest readyAt,
// lowest id wins"), so traces are bit-identical. Entries are lazy: when a
// blocked processor is woken its stale entry stays behind and is discarded
// on pop by comparing the recorded time against the live readyAt.
type procHeap []procEntry

func (h *procHeap) push(e procEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !lessProc((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *procHeap) pop() procEntry {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && lessProc(old[l], old[s]) {
			s = l
		}
		if r < n && lessProc(old[r], old[s]) {
			s = r
		}
		if s == i {
			break
		}
		old[i], old[s] = old[s], old[i]
		i = s
	}
	return top
}

func lessProc(a, b procEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.id < b.id
}

// Synchronization object address spaces. Events and barriers are identified
// by small ids in the ISA; the simulator gives each a cache line of its own
// in a reserved high region so that coherence traffic on sync variables is
// modelled like any other shared data.
const (
	eventAddrBase   = uint64(1) << 44
	barrierAddrBase = uint64(1)<<44 + uint64(1)<<40
)

func eventAddr(id int64) uint64   { return eventAddrBase + uint64(id)*64 }
func barrierAddr(id int64) uint64 { return barrierAddrBase + uint64(id)*64 }

type lockState struct {
	held    bool
	freeAt  uint64 // absolute time the lock becomes free (valid when !held)
	waiters []*proc
}

type eventState struct {
	set     bool
	setAt   uint64
	waiters []*proc
}

type barrierState struct {
	arrived []*proc
	maxTime uint64 // latest arrival time so far in this episode
}

type proc struct {
	id      int
	th      *vm.Thread
	readyAt uint64 // next time this processor can execute an instruction
	halted  bool

	writesDoneAt uint64 // completion time of the last buffered write
	blockedAt    uint64 // when the processor blocked (for W accounting)
	pendingEv    int    // index into trace events to patch on wakeup (-1 none)

	stats CPUStats
}

// sim carries the full machine state during Run.
type sim struct {
	cfg    Config
	procs  []*proc
	caches *mem.System
	shared *vm.PagedMem

	locks    map[uint64]*lockState
	events   map[int64]*eventState
	barriers map[int64]*barrierState

	tr  *trace.Trace
	trs []*trace.Trace // per-processor traces when RecordAll

	ready procHeap // lazy min-heap of (readyAt, id) wakeup entries

	memNextFree uint64 // earliest time the memory system accepts a new miss

	// Observability (all optional; see Config.Metrics / Config.Progress).
	wbHist   *obs.HistogramBatch // store-time write-buffer backlog, in cycles (merged once per run)
	steps    uint64              // instructions executed machine-wide
	pubSteps uint64              // steps already published to Progress
	pubCycle uint64              // latest global time published to Progress
}

// Run simulates progs (one per processor; len(progs) must equal
// cfg.NumCPUs) against a shared memory initialized by memInit (which may be
// nil). It returns the recorded trace and statistics.
func Run(progs []*asm.Program, memInit func(m *vm.PagedMem), cfg Config) (*Result, error) {
	if cfg.NumCPUs <= 0 {
		return nil, fmt.Errorf("tango: NumCPUs = %d", cfg.NumCPUs)
	}
	if len(progs) != cfg.NumCPUs {
		return nil, fmt.Errorf("tango: %d programs for %d processors", len(progs), cfg.NumCPUs)
	}
	if cfg.TraceCPU >= cfg.NumCPUs {
		return nil, fmt.Errorf("tango: TraceCPU %d out of range", cfg.TraceCPU)
	}
	if cfg.MaxInstrs == 0 {
		cfg.MaxInstrs = 1 << 40
	}

	caches, err := mem.NewSystem(cfg.NumCPUs, cfg.Mem)
	if err != nil {
		return nil, err
	}
	shared := vm.NewPagedMem()
	if memInit != nil {
		memInit(shared)
	}

	s := &sim{
		cfg:      cfg,
		caches:   caches,
		shared:   shared,
		locks:    make(map[uint64]*lockState),
		events:   make(map[int64]*eventState),
		barriers: make(map[int64]*barrierState),
	}
	if cfg.Metrics != nil {
		if cfg.MetricsPrefix == "" {
			cfg.MetricsPrefix = "tango."
		}
		s.wbHist = cfg.Metrics.HistogramBatch(cfg.MetricsPrefix+"writebuf.backlog_cycles",
			0, 1, 2, 5, 10, 25, 50, 100, 250)
	}
	if cfg.TraceCPU >= 0 {
		s.tr = &trace.Trace{
			App:         progs[cfg.TraceCPU].Name,
			CPU:         cfg.TraceCPU,
			NumCPUs:     cfg.NumCPUs,
			MissPenalty: caches.Config().MissPenalty,
		}
	}
	if cfg.RecordAll {
		s.trs = make([]*trace.Trace, cfg.NumCPUs)
		for i := range s.trs {
			s.trs[i] = &trace.Trace{
				App:         progs[i].Name,
				CPU:         i,
				NumCPUs:     cfg.NumCPUs,
				MissPenalty: caches.Config().MissPenalty,
			}
		}
		if cfg.TraceCPU >= 0 {
			s.tr = s.trs[cfg.TraceCPU] // share storage for the primary trace
		}
	}
	for i := 0; i < cfg.NumCPUs; i++ {
		th := vm.NewThread(progs[i], shared)
		th.SetReg(asm.RegCPU, uint64(i))
		th.SetReg(asm.RegNCPU, uint64(cfg.NumCPUs))
		s.procs = append(s.procs, &proc{id: i, th: th, pendingEv: -1})
	}

	if err := s.loop(); err != nil {
		return nil, err
	}

	res := &Result{Trace: s.tr, Traces: s.trs, Cycles: 0}
	for i, p := range s.procs {
		res.CacheStats = append(res.CacheStats, caches.Stats(i))
		res.CPUStats = append(res.CPUStats, p.stats)
		if p.stats.FinishCycle > res.Cycles {
			res.Cycles = p.stats.FinishCycle
		}
	}
	if cfg.Progress != nil {
		s.publishProgress(res.Cycles)
	}
	if tl := cfg.Timeline; tl != nil {
		tl.Finish(s.timelinePoint(res.Cycles))
	}
	s.publishMetrics(res)
	return res, nil
}

// timelinePoint sums the per-processor counters into one cumulative
// machine-wide timeline snapshot for the boundary at cycle.
func (s *sim) timelinePoint(cycle uint64) obs.TimelinePoint {
	p := obs.TimelinePoint{Cycle: cycle, Instructions: s.steps, Busy: s.steps}
	for _, pr := range s.procs {
		p.Sync += pr.stats.SyncWait + pr.stats.SyncTransfer
		p.Read += pr.stats.ReadStall
		p.Write += pr.stats.WriteDrain
	}
	return p
}

// publishProgress flushes the machine-wide instruction and cycle deltas
// accumulated since the previous flush into the Progress ticker.
func (s *sim) publishProgress(now uint64) {
	var dc uint64
	if now > s.pubCycle {
		dc = now - s.pubCycle
		s.pubCycle = now
	}
	s.cfg.Progress.Add(s.steps-s.pubSteps, dc)
	s.pubSteps = s.steps
}

// publishMetrics exports the run's per-CPU and machine-level counters into
// Config.Metrics under the "tango." prefix. No-op without a registry.
func (s *sim) publishMetrics(res *Result) {
	s.wbHist.Close()
	reg := s.cfg.Metrics
	if reg == nil {
		return
	}
	var instrs, misses, accesses uint64
	for i, p := range s.procs {
		pre := fmt.Sprintf("%scpu%02d.", s.cfg.MetricsPrefix, i)
		set := func(name string, v uint64) { reg.Counter(pre + name).Set(v) }
		st := s.caches.Stats(i)
		set("cache.read_hits", st.ReadHits)
		set("cache.read_misses", st.ReadMisses)
		set("cache.write_hits", st.WriteHits)
		set("cache.write_misses", st.WriteMisses)
		set("cache.upgrades", st.Upgrades)
		set("cache.evictions", st.Evictions)
		set("cache.invalidations", st.Invalidates)
		set("instructions", p.stats.Instructions)
		set("finish_cycle", p.stats.FinishCycle)
		set("sync.wait_cycles", p.stats.SyncWait)
		set("sync.transfer_cycles", p.stats.SyncTransfer)
		set("read.stall_cycles", p.stats.ReadStall)
		set("writebuf.drain_cycles", p.stats.WriteDrain)
		instrs += p.stats.Instructions
		misses += st.ReadMisses + st.WriteMisses
		accesses += st.Reads() + st.Writes()
	}
	mpre := s.cfg.MetricsPrefix + "machine."
	reg.Counter(mpre + "cycles").Set(res.Cycles)
	reg.Counter(mpre + "instructions").Set(instrs)
	reg.Counter(mpre + "cache.misses").Set(misses)
	reg.Counter(mpre + "cache.accesses").Set(accesses)
	if accesses > 0 {
		reg.Gauge(mpre + "cache.miss_rate").Set(float64(misses) / float64(accesses))
	}
}

// enqueue schedules p's next wakeup in the ready heap; no-op for halted or
// blocked processors (a blocked processor is enqueued by whoever wakes it).
func (s *sim) enqueue(p *proc) {
	if p.halted || p.readyAt == unblocked {
		return
	}
	s.ready.push(procEntry{at: p.readyAt, id: p.id})
}

func (s *sim) loop() error {
	running := len(s.procs)
	s.ready = make(procHeap, 0, 2*len(s.procs))
	for _, p := range s.procs {
		s.enqueue(p)
	}
	for running > 0 {
		// Pop the processor with the smallest ready time (lowest id wins
		// ties) — the same deterministic global-time-order interleaving the
		// linear scan produced, now via the event queue: the scheduler does
		// no per-processor polling, it jumps straight to the next wakeup.
		var next *proc
		for len(s.ready) > 0 {
			e := s.ready.pop()
			p := s.procs[e.id]
			if p.halted || p.readyAt == unblocked || p.readyAt != e.at {
				continue // stale: the processor moved on (or blocked) since the push
			}
			next = p
			break
		}
		if next == nil {
			return s.machineError("deadlock", 0,
				"%d processors blocked with no pending wakeup", s.blockedCount())
		}
		now := next.readyAt
		// Global time is monotone (the heap pops smallest readyAt first),
		// so every 2^k boundary the machine passes is crossed exactly once:
		// record the cumulative machine state before the step at now runs.
		if tl := s.cfg.Timeline; tl != nil {
			for b := tl.Boundary(); b <= now; b = tl.Boundary() {
				tl.Record(s.timelinePoint(b))
			}
		}
		if next.th.Executed >= s.cfg.MaxInstrs {
			return s.machineError("runaway", now,
				"cpu %d exceeded %d instructions (runaway program?)", next.id, s.cfg.MaxInstrs)
		}
		if s.cfg.MaxCycles > 0 && now > s.cfg.MaxCycles {
			return s.machineError("cycle budget", now,
				"simulated time passed %d cycles with %d processors still running (livelocked program?)",
				s.cfg.MaxCycles, running)
		}
		halted, err := s.step(next)
		if err != nil {
			return err
		}
		s.steps++
		if s.steps&(obs.PublishEvery-1) == 0 {
			if err := s.ctxErr(); err != nil {
				return fmt.Errorf("tango: simulation canceled at cycle %d: %w", now, err)
			}
			if s.cfg.Progress != nil {
				s.publishProgress(now)
			}
		}
		if halted {
			running--
		} else {
			s.enqueue(next)
		}
	}
	return nil
}

// ctxErr polls the cancellation context without blocking.
func (s *sim) ctxErr() error {
	if s.cfg.Ctx == nil {
		return nil
	}
	select {
	case <-s.cfg.Ctx.Done():
		return s.cfg.Ctx.Err()
	default:
		return nil
	}
}

func (s *sim) blockedCount() int {
	blocked := 0
	for _, p := range s.procs {
		if !p.halted {
			blocked++
		}
	}
	return blocked
}

// MachineError reports a simulation killed by the scheduler — deadlock,
// runaway instruction count, or the cycle budget — with a machine-state
// dump. It is permanent: the simulation is deterministic, so a retry would
// fail identically.
type MachineError struct {
	Reason string // "deadlock", "runaway", "cycle budget"
	Cycle  uint64 // global time when the error fired (0 for deadlock)
	Detail string
	State  string // per-processor machine-state dump
}

func (e *MachineError) Error() string {
	return fmt.Sprintf("tango: %s — %s; machine state: %s", e.Reason, e.Detail, e.State)
}

// Permanent marks the error as not worth retrying (see exp's retry policy).
func (e *MachineError) Permanent() bool { return true }

func (s *sim) machineError(reason string, cycle uint64, format string, args ...any) error {
	return &MachineError{
		Reason: reason,
		Cycle:  cycle,
		Detail: fmt.Sprintf(format, args...),
		State:  s.machineState(),
	}
}

// machineState renders a compact per-processor dump for diagnostics: where
// each processor is (pc), how far it got (instructions), and whether it is
// running, blocked on synchronization, or halted.
func (s *sim) machineState() string {
	var b strings.Builder
	for i, p := range s.procs {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case p.halted:
			fmt.Fprintf(&b, "cpu%d halted@%d after %d instrs", p.id, p.stats.FinishCycle, p.stats.Instructions)
		case p.readyAt == unblocked:
			fmt.Fprintf(&b, "cpu%d blocked since %d at pc %d (%d instrs)",
				p.id, p.blockedAt, p.th.PC, p.stats.Instructions)
		default:
			fmt.Fprintf(&b, "cpu%d ready@%d at pc %d (%d instrs)",
				p.id, p.readyAt, p.th.PC, p.stats.Instructions)
		}
	}
	locks, waiters := 0, 0
	for _, l := range s.locks {
		if l.held {
			locks++
		}
		waiters += len(l.waiters)
	}
	fmt.Fprintf(&b, "; locks held=%d lock-waiters=%d", locks, waiters)
	return b.String()
}

// record appends a trace event for p's trace (if recorded) and returns its
// index, or -1.
func (s *sim) record(p *proc, ev trace.Event) int {
	if s.trs != nil {
		t := s.trs[p.id]
		t.Events = append(t.Events, ev)
		return len(t.Events) - 1
	}
	if s.tr == nil || p.id != s.cfg.TraceCPU {
		return -1
	}
	s.tr.Events = append(s.tr.Events, ev)
	return len(s.tr.Events) - 1
}

// step executes one instruction on p, advancing its clock and possibly
// blocking it. It reports whether the processor halted.
func (s *sim) step(p *proc) (bool, error) {
	t := p.readyAt
	info, err := p.th.Step()
	if err != nil {
		return false, fmt.Errorf("tango: cpu %d: %w", p.id, err)
	}
	p.stats.Instructions++

	ev := trace.Event{
		PC:     int32(info.PC),
		Instr:  info.Instr,
		Addr:   info.Addr,
		Taken:  info.Taken,
		NextPC: int32(info.NextPC),
	}

	switch isa.Classify(info.Instr.Op) {
	case isa.ClassALU, isa.ClassBranch:
		p.readyAt = t + 1
		s.record(p, ev)

	case isa.ClassLoad:
		lat, miss := s.memRead(p.id, info.Addr, t)
		ev.Latency, ev.Miss = lat, miss
		p.readyAt = t + uint64(lat) // blocking read
		if miss {
			p.stats.ReadStall += uint64(lat - 1)
		}
		s.record(p, ev)

	case isa.ClassStore:
		lat, miss := s.memWrite(p.id, info.Addr, t)
		ev.Latency, ev.Miss = lat, miss
		if p.writesDoneAt > t {
			s.wbHist.Observe(p.writesDoneAt - t)
		} else {
			s.wbHist.Observe(0)
		}
		// Buffered write under RC: the processor continues next cycle; the
		// write completes in the background.
		done := t + uint64(lat)
		if done > p.writesDoneAt {
			p.writesDoneAt = done
		}
		p.readyAt = t + 1
		s.record(p, ev)

	case isa.ClassSync:
		return false, s.stepSync(p, t, info, ev)

	case isa.ClassHalt:
		p.halted = true
		p.stats.FinishCycle = t
		s.record(p, ev)
		return true, nil
	}
	return false, nil
}

// stepSync handles the five synchronization opcodes.
func (s *sim) stepSync(p *proc, t uint64, info vm.StepInfo, ev trace.Event) error {
	switch info.Instr.Op {
	case isa.OpLock:
		l := s.locks[info.Addr]
		if l == nil {
			l = &lockState{}
			s.locks[info.Addr] = l
		}
		if !l.held && l.freeAt <= t {
			// Free now: acquire immediately. The transfer is a read-modify-
			// write of the lock variable, modelled as an exclusive access.
			lat, miss := s.memWrite(p.id, info.Addr, t)
			ev.Latency, ev.Miss = lat, miss
			l.held = true
			p.readyAt = t + uint64(lat)
			p.stats.SyncTransfer += uint64(lat)
			s.record(p, ev)
			return nil
		}
		if !l.held { // free, but only at a future time (release in flight)
			w := l.freeAt - t
			lat, miss := s.memWrite(p.id, info.Addr, t)
			ev.Latency, ev.Wait, ev.Miss = lat, uint32(w), miss
			l.held = true
			p.readyAt = l.freeAt + uint64(lat)
			p.stats.SyncWait += w
			p.stats.SyncTransfer += uint64(lat)
			s.record(p, ev)
			return nil
		}
		// Held: block until granted by an unlock.
		p.blockedAt = t
		p.readyAt = unblocked
		p.pendingEv = s.record(p, ev)
		l.waiters = append(l.waiters, p)
		return nil

	case isa.OpUnlock:
		l := s.locks[info.Addr]
		if l == nil || !l.held {
			return fmt.Errorf("tango: cpu %d unlocks free lock %#x at pc %d", p.id, info.Addr, info.PC)
		}
		// Release semantics: the unlock write is ordered after all pending
		// writes; the processor itself continues (buffered write).
		freeAt := t
		if p.writesDoneAt > freeAt {
			freeAt = p.writesDoneAt
			p.stats.WriteDrain += freeAt - t
		}
		lat, miss := s.memWrite(p.id, info.Addr, t)
		ev.Latency, ev.Miss = lat, miss
		p.stats.SyncTransfer += uint64(lat)
		freeAt += uint64(lat)
		if freeAt > p.writesDoneAt {
			p.writesDoneAt = freeAt
		}
		p.readyAt = t + 1
		s.record(p, ev)

		if len(l.waiters) > 0 {
			// Grant to the first waiter (FIFO).
			w := l.waiters[0]
			l.waiters = l.waiters[1:]
			lat, miss := s.memWrite(w.id, info.Addr, freeAt)
			wait := freeAt - w.blockedAt
			w.readyAt = freeAt + uint64(lat)
			w.stats.SyncWait += wait
			w.stats.SyncTransfer += uint64(lat)
			s.patch(w, uint32(lat), uint32(wait), miss)
			s.enqueue(w)
		} else {
			l.held = false
			l.freeAt = freeAt
		}
		return nil

	case isa.OpBarrier:
		id := int64(info.Addr) // runtime barrier id (reg + imm)
		b := s.barriers[id]
		if b == nil {
			b = &barrierState{}
			s.barriers[id] = b
		}
		// Arrival is a release: drain the write buffer, then update the
		// barrier counter (a shared line).
		arrive := t
		if p.writesDoneAt > arrive {
			arrive = p.writesDoneAt
			p.stats.WriteDrain += arrive - t
		}
		lat, _ := s.memWrite(p.id, barrierAddr(id), arrive)
		p.stats.SyncTransfer += uint64(lat)
		arrive += uint64(lat)
		if arrive > b.maxTime {
			b.maxTime = arrive
		}
		p.blockedAt = t
		p.readyAt = unblocked
		p.pendingEv = s.record(p, ev)
		b.arrived = append(b.arrived, p)
		if len(b.arrived) == s.cfg.NumCPUs {
			depart := b.maxTime
			for _, w := range b.arrived {
				rlat, rmiss := s.memRead(w.id, barrierAddr(id), depart)
				wait := depart - w.blockedAt
				w.readyAt = depart + uint64(rlat)
				w.stats.SyncWait += wait
				w.stats.SyncTransfer += uint64(rlat)
				s.patch(w, uint32(rlat), uint32(wait), rmiss)
				s.enqueue(w)
			}
			b.arrived = b.arrived[:0]
			b.maxTime = 0
		}
		return nil

	case isa.OpWaitEv:
		id := int64(info.Addr)
		e := s.events[id]
		if e != nil && e.set {
			lat, miss := s.memRead(p.id, eventAddr(id), t)
			var wait uint64
			if e.setAt > t { // set-in-flight: value visible only at setAt
				wait = e.setAt - t
			}
			ev.Latency, ev.Wait, ev.Miss = lat, uint32(wait), miss
			p.readyAt = t + wait + uint64(lat)
			p.stats.SyncWait += wait
			p.stats.SyncTransfer += uint64(lat)
			s.record(p, ev)
			return nil
		}
		if e == nil {
			e = &eventState{}
			s.events[id] = e
		}
		p.blockedAt = t
		p.readyAt = unblocked
		p.pendingEv = s.record(p, ev)
		e.waiters = append(e.waiters, p)
		return nil

	case isa.OpSetEv:
		id := int64(info.Addr)
		e := s.events[id]
		if e == nil {
			e = &eventState{}
			s.events[id] = e
		}
		setAt := t
		if p.writesDoneAt > setAt {
			setAt = p.writesDoneAt
			p.stats.WriteDrain += setAt - t
		}
		lat, miss := s.memWrite(p.id, eventAddr(id), setAt)
		p.stats.SyncTransfer += uint64(lat)
		setAt += uint64(lat)
		e.set, e.setAt = true, setAt
		if setAt > p.writesDoneAt {
			p.writesDoneAt = setAt
		}
		ev.Latency, ev.Miss = lat, miss
		p.readyAt = t + 1
		s.record(p, ev)
		for _, w := range e.waiters {
			rlat, rmiss := s.memRead(w.id, eventAddr(id), setAt)
			wait := setAt - w.blockedAt
			w.readyAt = setAt + uint64(rlat)
			w.stats.SyncWait += wait
			w.stats.SyncTransfer += uint64(rlat)
			s.patch(w, uint32(rlat), uint32(wait), rmiss)
			s.enqueue(w)
		}
		e.waiters = e.waiters[:0]
		return nil
	}
	return fmt.Errorf("tango: unhandled sync op %v", info.Instr.Op)
}

// memRead performs a timing cache read, adding queueing delay at the
// memory system when bandwidth is finite.
func (s *sim) memRead(cpu int, addr uint64, t uint64) (uint32, bool) {
	lat, miss := s.caches.Read(cpu, addr)
	if miss {
		lat += s.queueDelay(t)
	}
	return lat, miss
}

// memWrite is memRead for writes.
func (s *sim) memWrite(cpu int, addr uint64, t uint64) (uint32, bool) {
	lat, miss := s.caches.Write(cpu, addr)
	if miss {
		lat += s.queueDelay(t)
	}
	return lat, miss
}

// queueDelay reserves a miss-service slot at the memory system and returns
// the extra cycles this miss spends queued.
func (s *sim) queueDelay(t uint64) uint32 {
	if s.cfg.MemIssueInterval == 0 {
		return 0
	}
	start := t
	if s.memNextFree > start {
		start = s.memNextFree
	}
	s.memNextFree = start + uint64(s.cfg.MemIssueInterval)
	return uint32(start - t)
}

// patch fills in the wait/transfer annotation of a blocked processor's
// pending trace event once it is woken.
func (s *sim) patch(p *proc, latency, wait uint32, miss bool) {
	if p.pendingEv < 0 {
		return
	}
	t := s.tr
	if s.trs != nil {
		t = s.trs[p.id]
	}
	e := &t.Events[p.pendingEv]
	e.Latency, e.Wait, e.Miss = latency, wait, miss
	p.pendingEv = -1
}
