package dynsched

// BenchmarkPerf tracks the two performance claims of the parallel
// experiment scheduler work: the serial-vs-parallel wall time of a full
// figure regeneration (WindowSweepAll across all five applications), and
// the steady-state allocation count of a pooled-scratch DS replay. The
// numbers are written to BENCH_perf.json so they are tracked in the
// repository. On a single-core host the serial and parallel sweeps time
// out the same — the speedup column is only meaningful at GOMAXPROCS >= 2.
//
// TestRunDSSteadyStateAllocs is the regression guard on the allocation
// work: before the scratch pooling a small-scale RC/W64 RunDS replay cost
// 1910 allocs/op; pooling the simulator state brought it to single digits.

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"dynsched/internal/apps"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/exp"
)

type perfBenchReport struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Scale      string `json:"scale"`

	SweepSerialNs   float64 `json:"windowsweepall_serial_ns_per_op"`
	SweepParallelNs float64 `json:"windowsweepall_parallel_ns_per_op"`
	SweepSpeedup    float64 `json:"windowsweepall_speedup"`

	RunDSNs       float64 `json:"runds_ns_per_op"`
	RunDSAllocs   float64 `json:"runds_allocs_per_op"`
	RunDSBaseline float64 `json:"runds_allocs_per_op_before_pooling"`
}

// sweepHarness builds a harness with the given worker bound and all five
// traces pre-generated, so the benchmark measures only the replay fan-out.
func sweepHarness(b *testing.B, workers int) *exp.Experiment {
	b.Helper()
	opts := exp.DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Workers = workers
	e := exp.New(opts)
	if _, err := e.RunAll(e.Apps()...); err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkPerf(b *testing.B) {
	b.ReportAllocs()
	rep := perfBenchReport{
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: "small",
		RunDSBaseline: 1910,
	}

	b.Run("WindowSweepAll/serial", func(b *testing.B) {
		b.ReportAllocs()
		e := sweepHarness(b, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.WindowSweepAll(); err != nil {
				b.Fatal(err)
			}
		}
		rep.SweepSerialNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("WindowSweepAll/parallel", func(b *testing.B) {
		b.ReportAllocs()
		e := sweepHarness(b, 0) // GOMAXPROCS workers
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.WindowSweepAll(); err != nil {
				b.Fatal(err)
			}
		}
		rep.SweepParallelNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("RunDS", func(b *testing.B) {
		b.ReportAllocs()
		e := benchHarness(b)
		run, err := e.Run("ocean")
		if err != nil {
			b.Fatal(err)
		}
		cfg := cpu.Config{Model: consistency.RC, Window: 64}
		if _, err := cpu.RunDS(run.Trace, cfg); err != nil { // warm the scratch pool
			b.Fatal(err)
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cpu.RunDS(run.Trace, cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&ms1)
		rep.RunDSNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		rep.RunDSAllocs = float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
	})

	if rep.SweepSerialNs > 0 && rep.SweepParallelNs > 0 {
		rep.SweepSpeedup = rep.SweepSerialNs / rep.SweepParallelNs
		b.ReportMetric(rep.SweepSpeedup, "sweep-speedup")
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_perf.json", append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRunDSSteadyStateAllocs is the allocation regression guard: a pooled
// RC/W64 replay must stay far below the 1910 allocs/op the pre-pooling
// simulator cost (the acceptance bar is a 5x reduction, i.e. <= 382).
func TestRunDSSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow at -short")
	}
	opts := exp.DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Apps = []string{"ocean"}
	e := exp.New(opts)
	run, err := e.Run("ocean")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.Config{Model: consistency.RC, Window: 64}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := cpu.RunDS(run.Trace, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// Generous headroom over the measured ~6 allocs/op, still ~20x under
	// the 382 acceptance bar.
	if allocs > 100 {
		t.Errorf("RunDS steady state = %.0f allocs/op, want <= 100 (pre-pooling baseline was 1910)", allocs)
	}
}
