package dynsched

// BenchmarkPerf tracks the two performance claims of the parallel
// experiment scheduler work: the serial-vs-parallel wall time of a full
// figure regeneration (WindowSweepAll across all five applications), and
// the steady-state allocation count of a pooled-scratch DS replay. The
// numbers are written to BENCH_perf.json so they are tracked in the
// repository. On a single-core host the serial and parallel sweeps time
// out the same — the speedup column is only meaningful at GOMAXPROCS >= 2.
//
// TestRunDSSteadyStateAllocs is the regression guard on the allocation
// work: before the scratch pooling a small-scale RC/W64 RunDS replay cost
// 1910 allocs/op; pooling the simulator state brought it to single digits.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"testing"

	"dynsched/internal/apps"
	"dynsched/internal/cache"
	"dynsched/internal/consistency"
	"dynsched/internal/cpu"
	"dynsched/internal/exp"
	"dynsched/internal/trace"
)

type perfBenchReport struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Scale      string `json:"scale"`

	SweepSerialNs   float64 `json:"windowsweepall_serial_ns_per_op"`
	SweepParallelNs float64 `json:"windowsweepall_parallel_ns_per_op"`
	// SweepSpeedup is only computed when GOMAXPROCS >= 2: on a single-core
	// host both arms run serially and the "speedup" is pure noise, so the
	// key is omitted (a missing key is one-sided and never diffs as a
	// regression) and SweepSpeedupNote says why. The gomaxprocs field above
	// records the parallelism context the speedup was measured under.
	SweepSpeedup     float64 `json:"windowsweepall_speedup,omitempty"`
	SweepSpeedupNote string  `json:"windowsweepall_speedup_note,omitempty"`

	RunDSNs       float64 `json:"runds_ns_per_op"`
	RunDSAllocs   float64 `json:"runds_allocs_per_op"`
	RunDSBaseline float64 `json:"runds_allocs_per_op_before_pooling"`

	Tango16Ns float64 `json:"tango16_ns_per_op"`

	// Event-driven time skip: DS RC/W64 replay cost with skipping on
	// (default) and forced off, at rising miss penalties. The skip arm
	// scales with trace events, the noskip arm with simulated cycles, so
	// the speedup grows with the penalty.
	Lat50SkipNs     float64 `json:"runds_lat50_skip_ns_per_op"`
	Lat50NoskipNs   float64 `json:"runds_lat50_noskip_ns_per_op"`
	Lat200SkipNs    float64 `json:"runds_lat200_skip_ns_per_op"`
	Lat200NoskipNs  float64 `json:"runds_lat200_noskip_ns_per_op"`
	Lat1000SkipNs   float64 `json:"runds_lat1000_skip_ns_per_op"`
	Lat1000NoskipNs float64 `json:"runds_lat1000_noskip_ns_per_op"`
	SkipSpeedup50   float64 `json:"timeskip_speedup_lat50"`
	SkipSpeedup200  float64 `json:"timeskip_speedup_lat200"`
	SkipSpeedup1000 float64 `json:"timeskip_speedup_lat1000"`

	// Trace format v3 vs v2, aggregated over the five paper applications.
	TraceV2BytesPerEvent float64 `json:"trace_v2_bytes_per_event"`
	TraceV3BytesPerEvent float64 `json:"trace_v3_bytes_per_event"`
	TraceV3SizeRatio     float64 `json:"trace_v3_size_ratio"`

	// Streaming v3 decode (trace.Cursor): a full scan of the serialized
	// ocean trace, events handed out through the fixed ring. Steady-state
	// decode is allocation-free, so per-scan allocations are the constant
	// cursor setup and per-event allocations approach zero as traces grow.
	CursorNsPerEvent     float64 `json:"cursor_ns_per_event"`
	CursorAllocsPerScan  float64 `json:"cursor_allocs_per_scan"`
	CursorAllocsPerEvent float64 `json:"cursor_allocs_per_event"`

	// Persistent result cache: one fig3 sweep over lu+mp3d, cold (empty
	// store: generate, replay, and populate) vs warm (every trace and cell
	// served from the store). Warm skips both tango generation and replay,
	// so the speedup is the incremental-sweep win.
	CacheColdSweepNs float64 `json:"cache_cold_sweep_ns"`
	CacheWarmSweepNs float64 `json:"cache_warm_sweep_ns"`
	CacheWarmSpeedup float64 `json:"cache_warm_speedup"`
}

// sweepHarness builds a harness with the given worker bound and all five
// traces pre-generated, so the benchmark measures only the replay fan-out.
func sweepHarness(b *testing.B, workers int) *exp.Experiment {
	b.Helper()
	opts := exp.DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Workers = workers
	e := exp.New(opts)
	if _, err := e.RunAll(e.Apps()...); err != nil {
		b.Fatal(err)
	}
	return e
}

func BenchmarkPerf(b *testing.B) {
	b.ReportAllocs()
	rep := perfBenchReport{
		GoVersion: runtime.Version(), GOOS: runtime.GOOS, GOARCH: runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0), Scale: "small",
		RunDSBaseline: 1910,
	}

	b.Run("WindowSweepAll/serial", func(b *testing.B) {
		b.ReportAllocs()
		e := sweepHarness(b, 1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.WindowSweepAll(); err != nil {
				b.Fatal(err)
			}
		}
		rep.SweepSerialNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("WindowSweepAll/parallel", func(b *testing.B) {
		b.ReportAllocs()
		e := sweepHarness(b, 0) // GOMAXPROCS workers
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.WindowSweepAll(); err != nil {
				b.Fatal(err)
			}
		}
		rep.SweepParallelNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("RunDS", func(b *testing.B) {
		b.ReportAllocs()
		e := benchHarness(b)
		run, err := e.Run("ocean")
		if err != nil {
			b.Fatal(err)
		}
		cfg := cpu.Config{Model: consistency.RC, Window: 64}
		if _, err := cpu.RunDS(run.Trace, cfg); err != nil { // warm the scratch pool
			b.Fatal(err)
		}
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cpu.RunDS(run.Trace, cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&ms1)
		rep.RunDSNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		rep.RunDSAllocs = float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
	})

	b.Run("Tango16", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			opts := exp.DefaultOptions()
			opts.Scale = apps.ScaleSmall
			opts.Apps = []string{"mp3d"}
			e := exp.New(opts)
			if _, err := e.Run("mp3d"); err != nil {
				b.Fatal(err)
			}
		}
		rep.Tango16Ns = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})

	b.Run("CursorScan", func(b *testing.B) {
		b.ReportAllocs()
		e := benchHarness(b)
		run, err := e.Run("ocean")
		if err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := run.Trace.WriteTo(&buf); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		r := bytes.NewReader(raw)
		nEvents := run.Trace.Len()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(raw)
			c, err := trace.NewCursor(r)
			if err != nil {
				b.Fatal(err)
			}
			for {
				if _, err := c.Next(); err != nil {
					if err != io.EOF {
						b.Fatal(err)
					}
					break
				}
			}
		}
		b.StopTimer()
		runtime.ReadMemStats(&ms1)
		rep.CursorAllocsPerScan = float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
		rep.CursorAllocsPerEvent = rep.CursorAllocsPerScan / float64(nEvents)
		rep.CursorNsPerEvent = float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(nEvents)
		b.ReportMetric(rep.CursorNsPerEvent, "ns/event")
	})

	// The incremental-sweep claim: a fig3 sweep against an empty store pays
	// generation + replay + population; the same sweep against the warm
	// store decodes cached traces and copies cached cell numbers. A fresh
	// Experiment per iteration keeps in-memory trace memoization out of the
	// measurement — only the on-disk store carries state between runs.
	cacheSweep := func(b *testing.B, dir string) {
		store, err := cache.Open(dir, cache.Options{Version: Version})
		if err != nil {
			b.Fatal(err)
		}
		opts := exp.DefaultOptions()
		opts.Scale = apps.ScaleSmall
		opts.Apps = []string{"lu", "mp3d"}
		opts.Cache = store
		e := exp.New(opts)
		if _, err := e.Figure3All(); err != nil {
			b.Fatal(err)
		}
		if err := store.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("CacheSweep/cold", func(b *testing.B) {
		b.ReportAllocs()
		base := b.TempDir()
		for i := 0; i < b.N; i++ {
			cacheSweep(b, fmt.Sprintf("%s/cold%d", base, i))
		}
		rep.CacheColdSweepNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	b.Run("CacheSweep/warm", func(b *testing.B) {
		b.ReportAllocs()
		dir := b.TempDir()
		cacheSweep(b, dir) // populate
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cacheSweep(b, dir)
		}
		rep.CacheWarmSweepNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	})
	if rep.CacheWarmSweepNs > 0 {
		rep.CacheWarmSpeedup = rep.CacheColdSweepNs / rep.CacheWarmSweepNs
		b.ReportMetric(rep.CacheWarmSpeedup, "cache-warm-speedup")
	}

	latNs := map[uint32][2]*float64{
		50:   {&rep.Lat50SkipNs, &rep.Lat50NoskipNs},
		200:  {&rep.Lat200SkipNs, &rep.Lat200NoskipNs},
		1000: {&rep.Lat1000SkipNs, &rep.Lat1000NoskipNs},
	}
	for _, penalty := range []uint32{50, 200, 1000} {
		opts := exp.DefaultOptions()
		opts.Scale = apps.ScaleSmall
		opts.MissPenalty = penalty
		opts.Apps = []string{"ocean"}
		e := exp.New(opts)
		run, err := e.Run("ocean")
		if err != nil {
			b.Fatal(err)
		}
		for armIdx, noskip := range []bool{false, true} {
			name := "skip"
			if noskip {
				name = "noskip"
			}
			slot := latNs[penalty][armIdx]
			b.Run(fmt.Sprintf("RunDS/lat%d/%s", penalty, name), func(b *testing.B) {
				b.ReportAllocs()
				cfg := cpu.Config{Model: consistency.RC, Window: 64, NoTimeSkip: noskip}
				if _, err := cpu.RunDS(run.Trace, cfg); err != nil { // warm the scratch pool
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := cpu.RunDS(run.Trace, cfg); err != nil {
						b.Fatal(err)
					}
				}
				*slot = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			})
		}
	}
	if rep.Lat50NoskipNs > 0 {
		rep.SkipSpeedup50 = rep.Lat50NoskipNs / rep.Lat50SkipNs
	}
	if rep.Lat200NoskipNs > 0 {
		rep.SkipSpeedup200 = rep.Lat200NoskipNs / rep.Lat200SkipNs
	}
	if rep.Lat1000NoskipNs > 0 {
		rep.SkipSpeedup1000 = rep.Lat1000NoskipNs / rep.Lat1000SkipNs
		b.ReportMetric(rep.SkipSpeedup1000, "timeskip-speedup@1000")
	}

	// Trace format sizes, aggregated over all five paper applications.
	{
		e := benchHarness(b)
		var v2Bytes, v3Bytes, events int64
		for _, app := range e.Apps() {
			run, err := e.Run(app)
			if err != nil {
				b.Fatal(err)
			}
			n3, err := run.Trace.WriteTo(io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			n2, err := run.Trace.WriteToV2(io.Discard)
			if err != nil {
				b.Fatal(err)
			}
			v3Bytes += n3
			v2Bytes += n2
			events += int64(run.Trace.Len())
		}
		rep.TraceV2BytesPerEvent = float64(v2Bytes) / float64(events)
		rep.TraceV3BytesPerEvent = float64(v3Bytes) / float64(events)
		rep.TraceV3SizeRatio = float64(v3Bytes) / float64(v2Bytes)
		b.ReportMetric(rep.TraceV3BytesPerEvent, "v3-bytes/event")
	}

	if rep.SweepSerialNs > 0 && rep.SweepParallelNs > 0 {
		if rep.GOMAXPROCS >= 2 {
			rep.SweepSpeedup = rep.SweepSerialNs / rep.SweepParallelNs
			b.ReportMetric(rep.SweepSpeedup, "sweep-speedup")
		} else {
			rep.SweepSpeedupNote = fmt.Sprintf(
				"speedup not computed: GOMAXPROCS=%d, the serial and parallel sweeps are the same arm",
				rep.GOMAXPROCS)
			b.Log(rep.SweepSpeedupNote)
		}
		out, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_perf.json", append(out, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRunDSSteadyStateAllocs is the allocation regression guard: a pooled
// RC/W64 replay must stay far below the 1910 allocs/op the pre-pooling
// simulator cost (the acceptance bar is a 5x reduction, i.e. <= 382).
func TestRunDSSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting is slow at -short")
	}
	opts := exp.DefaultOptions()
	opts.Scale = apps.ScaleSmall
	opts.Apps = []string{"ocean"}
	e := exp.New(opts)
	run, err := e.Run("ocean")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.Config{Model: consistency.RC, Window: 64}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := cpu.RunDS(run.Trace, cfg); err != nil {
			t.Fatal(err)
		}
	})
	// Generous headroom over the measured ~6 allocs/op, still ~20x under
	// the 382 acceptance bar.
	if allocs > 100 {
		t.Errorf("RunDS steady state = %.0f allocs/op, want <= 100 (pre-pooling baseline was 1910)", allocs)
	}
}
